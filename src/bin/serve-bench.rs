//! `serve-bench` — load generator and batching benchmark for `fno-serve`.
//!
//! ```text
//! serve-bench --addr 127.0.0.1:7878 [--requests 50] [--clients 4]
//!             [--channels 10] [--grid 16] [--model-name default]
//!             [--rate R] [--shutdown] [--bench-out FILE]
//! serve-bench --inproc --model model.fnc --compare-batching
//!             [--requests 512] [--clients 16] [--max-batch 16]
//!             [--bench-out results/BENCH_serve.json]
//! ```
//!
//! **TCP mode** (`--addr`) drives a running `fno-serve` over loopback or
//! the network. The default is closed-loop: `--clients` connections each
//! send a predict request, wait for the response, and repeat until the
//! shared budget of `--requests` is spent — concurrency across
//! connections is what gives the server's dispatcher batching
//! opportunities. `--rate R` switches to open-loop Poisson arrivals:
//! exponential inter-send gaps at mean rate `R`/s per connection, with a
//! reader thread draining responses. `--shutdown` sends a `shutdown`
//! frame when done so scripted runs can stop the server. Client-side
//! outcomes are counted (`serve_bench.requests` / `.errors` /
//! `.rejected`) and end-to-end latency is recorded in
//! `serve_bench.e2e_seconds`; everything lands in an `ft-obs/bench-v1`
//! JSON (default `BENCH_serve.json`) for `bench_compare` gating.
//!
//! **In-process mode** (`--inproc --compare-batching`) loads the model
//! into this process and runs the same closed-loop workload twice through
//! a [`ServeEngine`] — once with `max_batch 1` (batching disabled), once
//! with `--max-batch` — and reports the sustained-throughput ratio. This
//! isolates the micro-batching win from network effects; the acceptance
//! demo in `results/BENCH_serve.json` comes from this mode.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fno2d_turbulence::serve::{proto, ModelRegistry, ServeConfig, ServeEngine};
use fno2d_turbulence::tensor::Tensor;
use ft_obs::{Counter, Histogram, Record};

/// Requests that completed with an `ok` response.
static REQUESTS: Counter = Counter::new("serve_bench.requests");
/// Requests that failed for any reason other than admission rejection.
static ERRORS: Counter = Counter::new("serve_bench.errors");
/// Requests the server rejected with `overloaded`.
static REJECTED: Counter = Counter::new("serve_bench.rejected");
/// Client-observed end-to-end latency (send to decoded response).
static E2E: Histogram = Histogram::new("serve_bench.e2e_seconds");

const USAGE: &str = "usage:
  serve-bench --addr HOST:PORT [--requests 50] [--clients 4] [--channels 10]
              [--grid 16] [--model-name default] [--rate R] [--shutdown]
              [--bench-out BENCH_serve.json] [--metrics-out FILE] [--profile]
  serve-bench --inproc --model model.fnc --compare-batching [--requests 512]
              [--clients 16] [--max-batch 16] [--bench-out results/BENCH_serve.json]

TCP mode load-tests a running fno-serve (closed-loop by default, Poisson
open-loop with --rate). In-process mode measures the micro-batching
speedup (max_batch 1 vs --max-batch) on the same model and workload.";

type Opts = HashMap<String, String>;

const FLAGS: &[&str] = &["profile", "shutdown", "inproc", "compare-batching"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got `{a}`"))?;
        if FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), val.clone());
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        None => Ok(default),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // The bench file needs live counters/histograms regardless of the
    // observability flags.
    ft_obs::set_enabled(true);
    if let Some(path) = opts.get("metrics-out") {
        if let Err(e) = ft_obs::open_jsonl(path) {
            eprintln!("error: --metrics-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut manifest = ft_obs::flight::run_manifest("serve-bench");
    let mut keys: Vec<&String> = opts.keys().collect();
    keys.sort();
    for key in keys {
        manifest = manifest.str(key, &opts[key]);
    }
    ft_obs::flight::set_manifest(manifest);

    let result = if opts.contains_key("inproc") {
        run_inproc(&opts)
    } else {
        run_tcp(&opts)
    };
    ft_obs::close_jsonl();
    if opts.contains_key("profile") {
        eprint!("{}", ft_obs::profile_report());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A deterministic xorshift64* stream, for Poisson inter-arrival gaps.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // 53 mantissa bits -> uniform in (0, 1].
        ((self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential with mean `1/rate` seconds.
    fn exp_gap(&mut self, rate: f64) -> Duration {
        Duration::from_secs_f64(-self.next_f64().ln() / rate)
    }
}

/// The synthetic predict input every client sends: shape
/// `[channels, grid, grid]`, varied per request so payloads are not
/// byte-identical.
fn bench_input(channels: usize, grid: usize, salt: u64) -> Tensor {
    let phase = (salt % 97) as f64 * 0.05;
    Tensor::from_fn(&[channels, grid, grid], |i| {
        (i[0] as f64 * 0.7 + i[1] as f64 * 0.31 + i[2] as f64 * 0.11 + phase).sin()
    })
}

fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e} (gave up after 5s)"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Sends one predict and classifies the outcome into the bench counters.
fn do_predict(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    model: &str,
    input: &Tensor,
) -> Result<(), String> {
    let t0 = Instant::now();
    proto::write_predict(writer, model, input).map_err(|e| format!("send: {e}"))?;
    let frame = proto::read_frame(reader)
        .map_err(|e| format!("recv: {e}"))?
        .ok_or("server closed the connection")?;
    E2E.observe(t0.elapsed().as_secs_f64());
    let (header, _payload) = frame;
    if header.get("ok") == Some(&proto::Value::Bool(true)) {
        REQUESTS.inc();
    } else if header.get("error").and_then(proto::Value::as_str) == Some("overloaded") {
        REJECTED.inc();
    } else {
        ERRORS.inc();
    }
    Ok(())
}

fn run_tcp(opts: &Opts) -> Result<(), String> {
    // Register the outcome counters up front so a clean run still reports
    // explicit zeros — the CI baseline pins `errors`/`rejected` to 0.
    REQUESTS.add(0);
    ERRORS.add(0);
    REJECTED.add(0);
    let addr = opts.get("addr").ok_or("--addr is required (or use --inproc)")?.clone();
    let total: u64 = get(opts, "requests", 50u64)?;
    let clients: usize = get(opts, "clients", 4)?.max(1);
    let channels: usize = get(opts, "channels", 10)?;
    let grid: usize = get(opts, "grid", 16)?;
    let model = opts.get("model-name").cloned().unwrap_or_else(|| "default".to_string());
    let rate: f64 = get(opts, "rate", 0.0)?;

    let budget = Arc::new(AtomicU64::new(total));
    let start = Instant::now();
    let mut workers = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        let model = model.clone();
        let budget = Arc::clone(&budget);
        workers.push(std::thread::spawn(move || -> Result<(), String> {
            let stream = connect_with_retry(&addr)?;
            stream.set_nodelay(true).ok();
            let mut reader = BufReader::new(
                stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
            );
            let mut writer = BufWriter::new(stream);
            let mut rng = XorShift(0x9E3779B97F4A7C15 ^ (c as u64 + 1));
            loop {
                // Claim one request from the shared budget.
                let prev = budget.fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    n.checked_sub(1)
                });
                let Ok(n) = prev else { return Ok(()) };
                if rate > 0.0 {
                    std::thread::sleep(rng.exp_gap(rate));
                }
                let input = bench_input(channels, grid, n);
                do_predict(&mut reader, &mut writer, &model, &input)?;
            }
        }));
    }
    let mut first_err = None;
    for w in workers {
        if let Err(e) = w.join().map_err(|_| "client thread panicked".to_string())? {
            first_err.get_or_insert(e);
        }
    }
    let wall = start.elapsed().as_secs_f64();

    if opts.contains_key("shutdown") {
        let stream = connect_with_retry(&addr)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = BufWriter::new(stream);
        proto::write_bare(&mut writer, "shutdown").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let _ = proto::read_frame(&mut reader);
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    let ok = REQUESTS.get();
    let throughput = ok as f64 / wall.max(1e-9);
    eprintln!(
        "serve-bench: {ok} ok, {} rejected, {} errors in {wall:.2}s ({throughput:.1} req/s, \
         {clients} clients{})",
        REJECTED.get(),
        ERRORS.get(),
        if rate > 0.0 { format!(", Poisson {rate}/s per client") } else { ", closed-loop".into() }
    );
    let record = Record::new("serve_load")
        .str("mode", if rate > 0.0 { "poisson" } else { "closed_loop" })
        .u64("clients", clients as u64)
        .u64("requests_ok", ok)
        .u64("rejected", REJECTED.get())
        .u64("errors", ERRORS.get())
        .f64("wall_seconds", wall)
        .f64("throughput_per_sec", throughput);
    let bench = opts.get("bench-out").map(String::as_str).unwrap_or("BENCH_serve.json");
    ft_obs::bench::write_bench_json(bench, "experiment", "serve-bench", wall, &[record])
        .map_err(|e| format!("{bench}: {e}"))?;
    eprintln!("wrote {bench}");
    Ok(())
}

/// One closed-loop phase against an in-process engine: `clients` worker
/// threads share a budget of `total` requests. Returns (wall, ok).
fn inproc_phase(
    model_path: &str,
    max_batch: usize,
    clients: usize,
    total: u64,
    channels: usize,
    grid: usize,
) -> Result<(f64, u64), String> {
    let mut reg = ModelRegistry::new();
    reg.load_model("bench", model_path).map_err(|e| format!("--model {model_path}: {e}"))?;
    let engine = ServeEngine::new(
        reg,
        ServeConfig {
            max_batch,
            queue_capacity: (clients * 2).max(16),
            ..Default::default()
        },
    );
    let budget = Arc::new(AtomicU64::new(total));
    let ok = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let h = engine.handle();
            let budget = Arc::clone(&budget);
            let ok = Arc::clone(&ok);
            scope.spawn(move || loop {
                if budget.fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                    .is_err()
                {
                    return;
                }
                let input = bench_input(channels, grid, c as u64);
                match h.predict("bench", input) {
                    Ok(_) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => eprintln!("serve-bench: inproc predict failed: {e}"),
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    Ok((wall, ok.load(Ordering::Acquire)))
}

fn run_inproc(opts: &Opts) -> Result<(), String> {
    if !opts.contains_key("compare-batching") {
        return Err("--inproc currently requires --compare-batching".into());
    }
    let model_path = opts.get("model").ok_or("--inproc needs --model model.fnc")?;
    let total: u64 = get(opts, "requests", 512u64)?;
    let clients: usize = get(opts, "clients", 16)?.max(2);
    let max_batch: usize = get(opts, "max-batch", 16)?.max(2);

    // Probe the model once for the input shape the phases should send.
    let cfg = {
        let mut reg = ModelRegistry::new();
        reg.load_model("probe", model_path)
            .map_err(|e| format!("--model {model_path}: {e}"))?;
        reg.get("probe").expect("just registered").config().clone()
    };
    let channels = cfg.in_channels;
    let grid = (2 * cfg.modes).max(8);

    eprintln!(
        "serve-bench: comparing max_batch 1 vs {max_batch} \
         ({clients} closed-loop clients × {total} requests, [{channels}, {grid}, {grid}] inputs)"
    );
    // Warm-up phase so allocator and cache state are comparable.
    inproc_phase(model_path, 1, clients, (total / 4).max(8), channels, grid)?;
    let (wall_1, ok_1) = inproc_phase(model_path, 1, clients, total, channels, grid)?;
    let (wall_b, ok_b) = inproc_phase(model_path, max_batch, clients, total, channels, grid)?;
    if ok_1 != total || ok_b != total {
        return Err(format!("phase dropped requests: {ok_1}/{total} and {ok_b}/{total} ok"));
    }
    let tput_1 = ok_1 as f64 / wall_1.max(1e-9);
    let tput_b = ok_b as f64 / wall_b.max(1e-9);
    let speedup = tput_b / tput_1.max(1e-9);
    eprintln!(
        "serve-bench: max_batch 1: {tput_1:.1} req/s | max_batch {max_batch}: {tput_b:.1} req/s \
         | speedup {speedup:.2}x"
    );

    let records = vec![
        Record::new("serve_phase")
            .u64("max_batch", 1)
            .u64("requests_ok", ok_1)
            .f64("wall_seconds", wall_1)
            .f64("throughput_per_sec", tput_1),
        Record::new("serve_phase")
            .u64("max_batch", max_batch as u64)
            .u64("requests_ok", ok_b)
            .f64("wall_seconds", wall_b)
            .f64("throughput_per_sec", tput_b),
        Record::new("batching_speedup")
            .u64("clients", clients as u64)
            .u64("requests_per_phase", total)
            .f64("speedup", speedup),
    ];
    let bench = opts
        .get("bench-out")
        .map(String::as_str)
        .unwrap_or("results/BENCH_serve.json");
    let wall = wall_1 + wall_b;
    ft_obs::bench::write_bench_json(bench, "experiment", "serve-bench-batching", wall, &records)
        .map_err(|e| format!("{bench}: {e}"))?;
    eprintln!("wrote {bench}");
    Ok(())
}
