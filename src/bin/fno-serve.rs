//! `fno-serve` — TCP inference server for trained FNO models.
//!
//! ```text
//! fno-serve --model model.fnc | --checkpoint latest.ftc [--name default]
//!           [--addr 127.0.0.1:7878] [--max-batch 8] [--batch-window-us 200]
//!           [--queue-capacity 64] [--max-sessions 64] [--session-ttl-secs 300]
//!           [--threads N] [--metrics-out FILE] [--profile]
//! ```
//!
//! Loads one or more models (repeat is not supported from the CLI — one
//! `--model` *or* one `--checkpoint` per process, registered under
//! `--name`, default `default`), then serves the newline-delimited-JSON
//! wire protocol documented in `ft_serve::proto` until a client sends a
//! `shutdown` frame. Shutdown is graceful: the accept loop stops, open
//! connections are joined, and every request already admitted to the
//! queue completes before the process exits.
//!
//! `--checkpoint` uses the validated load path: the checkpoint must carry
//! model metadata (v2 files written by the trainer do), the architecture
//! is rebuilt from that metadata, and the recorded parameter count is
//! cross-checked before any weights are restored. Legacy v1 checkpoints
//! are refused with a typed error — point `--model` at a `.fnc` export
//! instead.
//!
//! `--threads N` sizes the global rayon pool once at startup; batched
//! forwards parallelise across that pool. The observability options
//! mirror `fno2dturb`: `--metrics-out` opens a JSONL stream (first record
//! is the run manifest), `--profile` prints the span/counter/histogram
//! report to stderr on exit.

use std::collections::HashMap;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use fno2d_turbulence::serve::{server, ModelRegistry, ServeConfig, ServeEngine, SessionConfig};

const USAGE: &str = "usage:
  fno-serve --model model.fnc | --checkpoint latest.ftc [--name default]
            [--addr 127.0.0.1:7878] [--max-batch 8] [--batch-window-us 200]
            [--queue-capacity 64] [--max-sessions 64] [--session-ttl-secs 300]
            [--threads N] [--metrics-out FILE] [--profile]

Serves predict/session requests over TCP (newline-delimited JSON headers,
little-endian f32 payloads) until a client sends a `shutdown` frame.";

type Opts = HashMap<String, String>;

const FLAGS: &[&str] = &["profile"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got `{a}`"))?;
        if FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), val.clone());
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        None => Ok(default),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let profile = opts.contains_key("profile");
    if profile {
        ft_obs::set_enabled(true);
    }
    if let Some(path) = opts.get("metrics-out") {
        ft_obs::set_enabled(true);
        if let Err(e) = ft_obs::open_jsonl(path) {
            eprintln!("error: --metrics-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if ft_obs::enabled() {
        let mut manifest = ft_obs::flight::run_manifest("fno-serve");
        let mut keys: Vec<&String> = opts.keys().collect();
        keys.sort();
        for key in keys {
            manifest = manifest.str(key, &opts[key]);
        }
        ft_obs::flight::set_manifest(manifest);
    }
    let result = run(&opts);
    ft_obs::close_jsonl();
    if profile {
        eprint!("{}", ft_obs::profile_report());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Opts) -> Result<(), String> {
    if let Some(threads) = opts.get("threads") {
        let n: usize = threads
            .parse()
            .map_err(|_| format!("--threads: cannot parse `{threads}`"))?;
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| format!("--threads {n}: {e}"))?;
    }

    let name = opts.get("name").map(String::as_str).unwrap_or("default");
    let mut registry = ModelRegistry::new();
    match (opts.get("model"), opts.get("checkpoint")) {
        (Some(path), None) => registry
            .load_model(name, path)
            .map_err(|e| format!("--model {path}: {e}"))?,
        (None, Some(path)) => registry
            .load_checkpoint(name, path)
            .map_err(|e| format!("--checkpoint {path}: {e}"))?,
        (Some(_), Some(_)) => {
            return Err("--model and --checkpoint are mutually exclusive".into())
        }
        (None, None) => return Err("one of --model or --checkpoint is required".into()),
    }
    let entry = registry.get(name).expect("model just registered");
    eprintln!(
        "fno-serve: model `{name}` expects {} inputs ({} parameters)",
        entry.input_rank_hint(),
        entry.config().param_count()
    );

    let cfg = ServeConfig {
        queue_capacity: get(opts, "queue-capacity", fno2d_turbulence::serve::DEFAULT_QUEUE_CAPACITY)?,
        max_batch: get(opts, "max-batch", fno2d_turbulence::serve::DEFAULT_MAX_BATCH)?,
        batch_window: Duration::from_micros(get(opts, "batch-window-us", 200u64)?),
        auto_dispatch: true,
        session: SessionConfig {
            max_sessions: get(opts, "max-sessions", 64)?,
            ttl: Duration::from_secs(get(opts, "session-ttl-secs", 300u64)?),
        },
    };
    let mut engine = ServeEngine::new(registry, cfg);

    let addr = opts.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let listener = TcpListener::bind(addr).map_err(|e| format!("--addr {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("fno-serve: listening on {local}");

    server::serve_tcp(engine.handle(), listener).map_err(|e| format!("serve: {e}"))?;
    eprintln!("fno-serve: draining queue and shutting down");
    engine.shutdown();
    Ok(())
}
