//! `bench_compare` — regression gate over two `ft-obs/bench-v1` files.
//!
//! ```text
//! bench_compare baseline.json candidate.json [--counter-tol X]
//!               [--timing-tol X] [--value-tol X] [--tol METRIC=X]...
//! ```
//!
//! Compares every metric of the candidate BENCH file against the baseline
//! using per-class relative tolerances (see `ft_obs::compare`): counters
//! are two-sided and tight, timings and throughputs one-sided and loose
//! (wall-clock noise across machines dwarfs real smoke-scale regressions),
//! gauges two-sided. `--tol METRIC=X` pins an individual metric (use the
//! flattened name printed in the table, e.g. `gauges.train.final_loss`).
//!
//! Exit status: 0 when every metric is within tolerance, 1 when at least
//! one regressed, 2 for usage, I/O or parse errors — so CI can
//! distinguish "the code got worse" from "the gate itself broke".

use std::process::ExitCode;

use ft_obs::compare::{compare, parse_bench_file, CompareConfig};

const USAGE: &str = "usage:
  bench_compare BASELINE.json CANDIDATE.json [options]

options:
  --counter-tol X    relative tolerance for counters (default 0.1)
  --timing-tol X     slowdown tolerance for timings/throughputs (default 3.0)
  --value-tol X      relative tolerance for gauges/values (default 1.0)
  --tol METRIC=X     per-metric override (repeatable)

exit status: 0 = within tolerance, 1 = regression, 2 = usage/parse error";

fn next_f64(it: &mut std::slice::Iter<'_, String>, key: &str) -> Result<f64, String> {
    let v = it.next().ok_or_else(|| format!("{key} needs a value"))?;
    v.parse().map_err(|_| format!("{key}: cannot parse `{v}`"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--counter-tol" => cfg.counter_tol = next_f64(&mut it, "--counter-tol")?,
            "--timing-tol" => cfg.timing_tol = next_f64(&mut it, "--timing-tol")?,
            "--value-tol" => cfg.value_tol = next_f64(&mut it, "--value-tol")?,
            "--tol" => {
                let v = it.next().ok_or("--tol needs METRIC=X")?;
                let (name, t) = v.split_once('=').ok_or("--tol wants METRIC=X")?;
                let t: f64 = t.parse().map_err(|_| format!("--tol {v}: bad tolerance"))?;
                cfg.overrides.push((name.to_string(), t));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(false);
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            _ => files.push(a.clone()),
        }
    }
    let [base_path, cand_path] = files.as_slice() else {
        return Err("expected exactly two BENCH files".to_string());
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let base = parse_bench_file(&read(base_path)?).map_err(|e| format!("{base_path}: {e}"))?;
    let cand = parse_bench_file(&read(cand_path)?).map_err(|e| format!("{cand_path}: {e}"))?;
    let cmp = compare(&base, &cand, &cfg);
    print!("{}", cmp.render());
    Ok(cmp.regressed())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
