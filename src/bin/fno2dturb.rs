//! `fno2dturb` — command-line interface to the fno2d-turbulence library.
//!
//! ```text
//! fno2dturb generate --out data.ftt [--grid 32] [--samples 8] [--snapshots 40]
//!                    [--reynolds 1000] [--solver spectral|lbm|bgk] [--seed 0]
//! fno2dturb train    --data data.ftt --model model.fnc [--width 8] [--layers 4]
//!                    [--modes 8] [--out-channels 5] [--epochs 20] [--lr 5e-3]
//!                    [--batch 8] [--div-weight 0] [--train-frac 0.8]
//!                    [--checkpoint-dir checkpoints] [--checkpoint-every 1]
//!                    [--resume checkpoints/latest.ftc]
//! fno2dturb rollout  --data data.ftt --model model.fnc [--sample 0] [--frames 10]
//!                    [--out pred.ftt]
//! fno2dturb hybrid   --data data.ftt --model model.fnc [--frames 60]
//!                    [--scheme hybrid|fno|pde] [--window 5] [--reynolds 1000]
//! ```
//!
//! `generate` writes a `[S, T, 2, H, W]` velocity tensor in the FTT1 format;
//! `train` fits a 2D FNO with temporal channels and writes a single-file
//! model (config + weights); `rollout` autoregressively forecasts a sample
//! and reports per-frame errors; `hybrid` marches one of the three schemes
//! and prints the Fig. 8 diagnostics.
//!
//! Every command accepts `--threads N`, which sizes the global rayon
//! pool once at startup (attempting to size it twice, or after implicit
//! initialization, is reported as a clean error rather than a panic).
//!
//! Every command additionally accepts the observability options
//! `--metrics-out FILE` (stream JSONL metric records — one `train_epoch`
//! record per epoch during `train`, opened by a `run_manifest` record
//! identifying the run) and `--profile` (print the aggregated span tree,
//! counters, gauges and histograms to stderr on exit). Either option enables
//! the `ft-obs` instrumentation; with both off the instrumented code paths
//! cost a single atomic load. With instrumentation on, `train` also writes
//! `BENCH_train.json` and `generate` writes `BENCH_solver.json`
//! (`ft-obs/bench-v1` schema; override the path with `--bench-out FILE`),
//! and `--probe-every N` streams `physics` diagnostics records — every N
//! solver steps during `generate`, every N epochs (measuring the first
//! held-out prediction) during `train`.

use std::collections::HashMap;
use std::process::ExitCode;

use fno2d_turbulence::data::{
    load_tensor, save_tensor, split_components, windows, DatasetConfig, SolverKind,
    TurbulenceDataset, WindowSpec,
};
use fno2d_turbulence::fno::rollout::{frame_errors, rollout};
use fno2d_turbulence::fno::{
    CheckpointConfig, Fno, FnoConfig, HybridConfig, HybridScheme, Scheme, TrainConfig, Trainer,
};
use fno2d_turbulence::lbm::IcSpec;
use fno2d_turbulence::ns::SpectralNs;
use fno2d_turbulence::tensor::Tensor;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(threads) = opts.get("threads") {
        let n: usize = match threads.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --threads: cannot parse `{threads}`");
                return ExitCode::FAILURE;
            }
        };
        // The pool can only be sized once per process; a second attempt
        // (or an earlier implicit initialization) is a clean error.
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("error: --threads {n}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let profile = opts.contains_key("profile");
    if profile {
        ft_obs::set_enabled(true);
    }
    if let Some(path) = opts.get("metrics-out") {
        ft_obs::set_enabled(true);
        if let Err(e) = ft_obs::open_jsonl(path) {
            eprintln!("error: --metrics-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if ft_obs::enabled() {
        // Open every metric stream with the run's identity; the manifest
        // is also replayed as the first line of any flight-recorder dump.
        let mut manifest = ft_obs::flight::run_manifest(&format!("fno2dturb-{command}"));
        let mut keys: Vec<&String> = opts.keys().collect();
        keys.sort();
        for key in keys {
            manifest = manifest.str(key, &opts[key]);
        }
        ft_obs::flight::set_manifest(manifest);
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "train" => cmd_train(&opts),
        "rollout" => cmd_rollout(&opts),
        "hybrid" => cmd_hybrid(&opts),
        "ensemble" => cmd_ensemble(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    ft_obs::close_jsonl();
    if profile {
        eprint!("{}", ft_obs::profile_report());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fno2dturb generate --out data.ftt [--grid N] [--samples S] [--snapshots T]
                     [--reynolds RE] [--solver spectral|lbm|bgk] [--seed K]
  fno2dturb train    --data data.ftt --model model.fnc [--width W] [--layers L]
                     [--modes M] [--out-channels K] [--epochs E] [--lr LR]
                     [--batch B] [--div-weight WD] [--train-frac F]
                     [--checkpoint-dir DIR] [--checkpoint-every N]
                     [--resume DIR/latest.ftc]
  fno2dturb rollout  --data data.ftt --model model.fnc [--sample I] [--frames N]
                     [--out pred.ftt]
  fno2dturb hybrid   --data data.ftt --model model.fnc [--frames N]
                     [--scheme hybrid|fno|pde] [--window K] [--reynolds RE]
  fno2dturb ensemble --data data.ftt --model model.fnc [--sample I] [--frames N]
                     [--members M] [--delta D]

global options (any command):
  --threads N          size the global rayon pool once at startup (error if
                       the pool was already initialized)

observability (any command):
  --metrics-out FILE   stream JSONL metric records to FILE (opens with a
                       run_manifest record)
  --profile            print span/counter/gauge/histogram profile to stderr
                       on exit
  --bench-out FILE     override the BENCH_train.json / BENCH_solver.json path
  --probe-every N      generate/train: emit a `physics` record every N solver
                       steps (generate) or epochs (train); 0 disables";

type Opts = HashMap<String, String>;

/// Options that are boolean flags (present/absent, no value argument).
const FLAGS: &[&str] = &["profile"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got `{a}`"))?;
        if FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), val.clone());
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        None => Ok(default),
    }
}

fn require<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(|s| s.as_str()).ok_or_else(|| format!("--{key} is required"))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let out = require(opts, "out")?;
    let grid: usize = get(opts, "grid", 32)?;
    let samples: usize = get(opts, "samples", 8)?;
    let snapshots: usize = get(opts, "snapshots", 40)?;
    let reynolds: f64 = get(opts, "reynolds", 1000.0)?;
    let seed: u64 = get(opts, "seed", 0)?;
    let probe_every: usize = get(opts, "probe-every", 0)?;
    let solver = match opts.get("solver").map(String::as_str).unwrap_or("spectral") {
        "spectral" => SolverKind::SpectralNs,
        "lbm" => SolverKind::EntropicLbm,
        "bgk" => SolverKind::BgkLbm,
        other => return Err(format!("--solver: unknown `{other}`")),
    };

    eprintln!("generating {samples} × {snapshots} snapshots on {grid}×{grid} (Re ≈ {reynolds})…");
    let cfg = DatasetConfig {
        n_grid: grid,
        samples,
        snapshots,
        dt_sample_tc: 0.005,
        burn_in_tc: if grid >= 128 { 0.5 } else { 0.1 },
        reynolds,
        ic: IcSpec { k_min: 2, k_max: (grid / 6).clamp(3, 8) },
        solver,
        seed,
        probe_every,
    };
    let start = std::time::Instant::now();
    let ds = TurbulenceDataset::generate(cfg);
    let wall = start.elapsed().as_secs_f64();
    save_tensor(out, &ds.velocity).map_err(|e| e.to_string())?;
    eprintln!("wrote {out} ({:?})", ds.velocity.dims());
    if ft_obs::enabled() {
        let solver_name = match solver {
            SolverKind::SpectralNs => "spectral",
            SolverKind::EntropicLbm => "lbm",
            SolverKind::BgkLbm => "bgk",
            SolverKind::ArakawaFd => "arakawa",
        };
        let record = ft_obs::Record::new("generate")
            .str("solver", solver_name)
            .u64("grid", grid as u64)
            .u64("samples", samples as u64)
            .u64("snapshots", snapshots as u64)
            .f64("reynolds", reynolds)
            .f64("wall_seconds", wall);
        let bench = opts.get("bench-out").map(String::as_str).unwrap_or("BENCH_solver.json");
        ft_obs::bench::write_bench_json(bench, "solver", "fno2dturb-generate", wall, &[record])
            .map_err(|e| format!("{bench}: {e}"))?;
        eprintln!("wrote {bench}");
    }
    Ok(())
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let data = require(opts, "data")?;
    let model_path = require(opts, "model")?;
    let width: usize = get(opts, "width", 8)?;
    let layers: usize = get(opts, "layers", 4)?;
    let modes: usize = get(opts, "modes", 8)?;
    let out_channels: usize = get(opts, "out-channels", 5)?;
    let epochs: usize = get(opts, "epochs", 20)?;
    let lr: f64 = get(opts, "lr", 5e-3)?;
    let batch: usize = get(opts, "batch", 8)?;
    let div_weight: f64 = get(opts, "div-weight", 0.0)?;
    let train_frac: f64 = get(opts, "train-frac", 0.8)?;
    let probe_every: usize = get(opts, "probe-every", 0)?;
    if probe_every > 0 && !out_channels.is_multiple_of(2) {
        eprintln!(
            "warning: --probe-every needs paired (ux, uy) output channels; \
             --out-channels {out_channels} is odd, so no physics records will be emitted"
        );
    }

    let velocity = load_tensor(data).map_err(|e| e.to_string())?;
    if velocity.shape().rank() != 5 {
        return Err(format!("--data: expected [S,T,2,H,W], got {:?}", velocity.dims()));
    }
    let flat = split_components(&velocity);
    let spec = WindowSpec { input_len: 10, output_len: out_channels, stride: out_channels };
    let total = flat.dims()[0];
    let split = ((total as f64 * train_frac).round() as usize).clamp(1, total - 1);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for s in 0..total {
        let pairs = windows(&flat.index_axis0(s), &spec);
        if s < split {
            train.extend(pairs);
        } else {
            test.extend(pairs);
        }
    }
    if train.is_empty() {
        return Err("no training pairs (too few snapshots for the window?)".into());
    }
    eprintln!("{} train pairs, {} test pairs", train.len(), test.len());

    let mut cfg = FnoConfig::fno2d(width, layers, modes, out_channels);
    if velocity.dims()[4] < 128 {
        cfg.lifting_channels = 32;
        cfg.projection_channels = 32;
    }
    eprintln!("model: {} parameters", cfg.param_count());
    let model = Fno::new(cfg, 7);
    let tcfg = TrainConfig {
        epochs,
        batch_size: batch,
        lr,
        scheduler_gamma: 0.5,
        scheduler_step: 100,
        seed: 0,
        divergence_weight: div_weight,
        probe_every,
        ..Default::default()
    };
    let mut trainer = Trainer::new(model, tcfg);
    if let Some(dir) = opts.get("checkpoint-dir") {
        let every: usize = get(opts, "checkpoint-every", 1)?;
        let mut ckpt = CheckpointConfig::new(dir, every);
        ckpt.keep_last = 5;
        trainer = trainer.with_checkpointing(ckpt);
        eprintln!("checkpointing to {dir}/ every {every} epoch(s)");
    }
    if let Some(path) = opts.get("resume") {
        trainer = trainer
            .resume_from(path)
            .map_err(|e| format!("--resume {path}: {e}"))?;
        eprintln!("resuming from {path}");
    }
    let report = trainer.train(&train, &test);
    eprintln!(
        "loss {:.4e} → {:.4e}, test error {:.4e}, {:.1}s",
        report.train_loss[0],
        report.train_loss.last().unwrap(),
        report.test_error,
        report.wall_seconds
    );
    for r in &report.recoveries {
        eprintln!(
            "recovered from {:?} at epoch {} batch {} (lr now {:.3e})",
            r.cause, r.epoch, r.batch, r.lr
        );
    }
    if ft_obs::enabled() {
        let records: Vec<ft_obs::Record> = report
            .epochs
            .iter()
            .map(|m| {
                let recoveries =
                    report.recoveries.iter().filter(|r| r.epoch <= m.epoch).count() as u64;
                ft_obs::Record::new("train_epoch")
                    .u64("epoch", m.epoch as u64)
                    .f64("wall_seconds", m.wall_seconds)
                    .u64("samples", m.samples as u64)
                    .f64("samples_per_sec", m.samples_per_sec)
                    .f64("loss", m.loss)
                    .f64("grad_norm", m.grad_norm)
                    .f64("lr", m.lr)
                    .u64("recoveries", recoveries)
            })
            .collect();
        let bench = opts.get("bench-out").map(String::as_str).unwrap_or("BENCH_train.json");
        ft_obs::bench::write_bench_json(
            bench,
            "train",
            "fno2dturb-train",
            report.wall_seconds,
            &records,
        )
        .map_err(|e| format!("{bench}: {e}"))?;
        eprintln!("wrote {bench}");
    }
    let mut model = trainer.into_model();
    model.save(model_path).map_err(|e| e.to_string())?;
    eprintln!("wrote {model_path}");
    Ok(())
}

fn load_sample_history(
    velocity: &Tensor,
    sample: usize,
) -> Result<(Vec<(Tensor, Tensor)>, usize), String> {
    let dims = velocity.dims().to_vec();
    if dims.len() != 5 {
        return Err(format!("--data: expected [S,T,2,H,W], got {dims:?}"));
    }
    if sample >= dims[0] {
        return Err(format!("--sample {sample} out of range ({} samples)", dims[0]));
    }
    if dims[1] < 10 {
        return Err("need at least 10 snapshots of history".into());
    }
    let traj = velocity.index_axis0(sample);
    let hist: Vec<(Tensor, Tensor)> = (0..10)
        .map(|t| {
            let snap = traj.index_axis0(t);
            (snap.index_axis0(0), snap.index_axis0(1))
        })
        .collect();
    Ok((hist, dims[4]))
}

fn cmd_rollout(opts: &Opts) -> Result<(), String> {
    let data = require(opts, "data")?;
    let model_path = require(opts, "model")?;
    let sample: usize = get(opts, "sample", 0)?;
    let frames: usize = get(opts, "frames", 10)?;

    let velocity = load_tensor(data).map_err(|e| e.to_string())?;
    let model = Fno::load(model_path).map_err(|e| e.to_string())?;
    let flat = split_components(&velocity);
    let comp = flat.index_axis0(sample * 2); // u_x component of the sample
    let t_avail = comp.dims()[0];
    if t_avail < 10 {
        return Err("need at least 10 snapshots of history".into());
    }

    let hist = comp.slice_axis0(0, 10);
    let pred = rollout(&model, &hist, frames);

    // Errors where truth exists.
    let have_truth = (t_avail - 10).min(frames);
    if have_truth > 0 {
        let truth = comp.slice_axis0(10, have_truth);
        let pred_head = pred.slice_axis0(0, have_truth);
        println!("frame,rel_l2_error");
        for (i, e) in frame_errors(&pred_head, &truth).iter().enumerate() {
            println!("{},{e:.6e}", i + 1);
        }
    }
    if let Some(out) = opts.get("out") {
        save_tensor(out, &pred).map_err(|e| e.to_string())?;
        eprintln!("wrote {out} ({:?})", pred.dims());
    }
    Ok(())
}

fn cmd_hybrid(opts: &Opts) -> Result<(), String> {
    let data = require(opts, "data")?;
    let model_path = require(opts, "model")?;
    let frames: usize = get(opts, "frames", 60)?;
    let window: usize = get(opts, "window", 5)?;
    let reynolds: f64 = get(opts, "reynolds", 1000.0)?;
    let scheme = match opts.get("scheme").map(String::as_str).unwrap_or("hybrid") {
        "hybrid" => Scheme::Hybrid,
        "fno" => Scheme::PureFno,
        "pde" => Scheme::PurePde,
        other => return Err(format!("--scheme: unknown `{other}`")),
    };
    let sample: usize = get(opts, "sample", 0)?;

    let velocity = load_tensor(data).map_err(|e| e.to_string())?;
    let model = Fno::load(model_path).map_err(|e| e.to_string())?;
    let (hist, n) = load_sample_history(&velocity, sample)?;

    let nu = 0.05 * n as f64 / reynolds;
    let mut solver = SpectralNs::new(n, n as f64, nu);
    let hcfg = HybridConfig { window_frames: window, dt_frame_tc: 0.005, t_c: n as f64 / 0.05 };
    let log = HybridScheme::new(&model, &mut solver, hcfg).run(&hist, frames, scheme);

    println!("t_tc,kinetic_energy,enstrophy,divergence_norm");
    for i in 0..log.times.len() {
        println!(
            "{:.4},{:.6e},{:.6e},{:.6e}",
            log.times[i], log.kinetic_energy[i], log.enstrophy[i], log.divergence[i]
        );
    }
    Ok(())
}

fn cmd_ensemble(opts: &Opts) -> Result<(), String> {
    use fno2d_turbulence::fno::ensemble::ensemble_rollout;
    let data = require(opts, "data")?;
    let model_path = require(opts, "model")?;
    let sample: usize = get(opts, "sample", 0)?;
    let frames: usize = get(opts, "frames", 10)?;
    let members: usize = get(opts, "members", 8)?;

    let velocity = load_tensor(data).map_err(|e| e.to_string())?;
    let model = Fno::load(model_path).map_err(|e| e.to_string())?;
    let flat = split_components(&velocity);
    if sample * 2 >= flat.dims()[0] {
        return Err(format!("--sample {sample} out of range"));
    }
    let comp = flat.index_axis0(sample * 2);
    if comp.dims()[0] < 10 {
        return Err("need at least 10 snapshots of history".into());
    }
    let hist = comp.slice_axis0(0, 10);
    let default_delta = 0.01 * hist.norm_l2();
    let delta: f64 = get(opts, "delta", default_delta)?;

    let ens = ensemble_rollout(&model, &hist, frames, members, delta);
    println!("frame,relative_spread{}", if comp.dims()[0] >= 10 + frames { ",mean_rel_error" } else { "" });
    for t in 0..frames {
        let mean_frame = ens.mean.slice_axis0(t, 1);
        let rms = mean_frame.norm_l2() / (mean_frame.len() as f64).sqrt();
        let rel_spread = ens.spread[t] / rms.max(1e-300);
        if comp.dims()[0] >= 10 + frames {
            let truth = comp.slice_axis0(10 + t, 1);
            let err = mean_frame.sub(&truth).norm_l2() / truth.norm_l2().max(1e-300);
            println!("{},{rel_spread:.6e},{err:.6e}", t + 1);
        } else {
            println!("{},{rel_spread:.6e}", t + 1);
        }
    }
    eprintln!("# {members} members, delta = {delta:.3e}");
    Ok(())
}
