//! # fno2d-turbulence
//!
//! Rust reproduction of *"Fourier neural operators for spatiotemporal
//! dynamics in two-dimensional turbulence"* (Atif et al., SC 2024).
//!
//! This umbrella crate re-exports the whole workspace so downstream users
//! (and the `examples/` binaries) can depend on a single crate:
//!
//! * [`tensor`] — dense real/complex tensors,
//! * [`fft`] — from-scratch FFTs (radix-2, mixed-radix, Bluestein, real, N-d),
//! * [`lbm`] — entropic lattice Boltzmann D2Q9 data generator,
//! * [`ns`] — pseudo-spectral and finite-difference Navier-Stokes solvers,
//! * [`data`] — dataset generation, normalization, windowing, on-disk format,
//! * [`analysis`] — flow statistics, spectra, Lyapunov exponents,
//! * [`nn`] — neural-net substrate with hand-derived reverse-mode gradients,
//! * [`fno`] — the paper's contribution: FNO2d/FNO3d, training, rollout and
//!   the hybrid FNO-PDE orchestrator,
//! * [`obs`] — observability substrate: timing spans, counters/gauges,
//!   JSONL metric streaming and `BENCH_*.json` emission (off by default,
//!   zero overhead when disabled),
//! * [`serve`] — inference serving: model registry, micro-batching
//!   request engine with admission control, stateful rollout sessions,
//!   and the `fno-serve` wire protocol.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]

pub use ft_analysis as analysis;
pub use ft_data as data;
pub use ft_fft as fft;
pub use ft_lbm as lbm;
pub use ft_nn as nn;
pub use ft_ns as ns;
pub use ft_obs as obs;
pub use ft_serve as serve;
pub use ft_tensor as tensor;
pub use fno_core as fno;

/// Workspace version, mirrored from the crate metadata.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
